// Command pruner-vet runs the repo's determinism & concurrency contract
// analyzers (internal/lint) over Go packages, in the manner of go vet:
//
//	pruner-vet ./...
//	pruner-vet -checks rawgo,maprange ./internal/tuner/...
//	pruner-vet -json ./... | jq 'select(.suppressed)'
//
// Exit-code contract (stable, scripted against by make lint and CI):
//
//	0  every surviving diagnostic count is zero — the tree honors the
//	   contract (suppressed findings may still exist; see -json)
//	1  at least one diagnostic survives: a finding with no //pruner:allow,
//	   or a malformed, unknown, reasonless, or unused suppression
//	2  the packages failed to load (bad pattern, type error) or the
//	   flags were invalid (unknown analyzer name)
//
// With -json, pruner-vet writes one JSON object per diagnostic to
// stdout — suppressed ones included, so editors and CI dashboards see
// the complete picture — while the exit code still keys on unsuppressed
// findings only. A clean run is part of the bitwise-reproducibility
// contract (DESIGN.md §10, §12).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pruner/internal/lint"
)

// jsonDiag is the -json wire format: one object per line, one line per
// diagnostic, suppressed or not.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

func main() {
	var (
		checks   = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		listOnly = flag.Bool("list", false, "list available analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit one JSON object per diagnostic (suppressed included) instead of text")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pruner-vet [-checks name,...] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *checks != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pruner-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// RunAll keeps the suppressed diagnostics (marked as such) so -json
	// can report them; the exit code counts only the survivors either way.
	all, err := lint.RunAll(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pruner-vet: %v\n", err)
		os.Exit(2)
	}
	findings := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range all {
		if !d.Suppressed {
			findings++
		}
		switch {
		case *jsonOut:
			_ = enc.Encode(jsonDiag{ // encoding a plain struct to stdout cannot fail usefully
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Check:      d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				Reason:     d.Reason,
			})
		case !d.Suppressed:
			fmt.Println(d)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "pruner-vet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
