// Command dataset-gen builds a synthetic TenSet-style dataset (measured
// schedule samples per subgraph) and reports its statistics.
//
// Usage:
//
//	dataset-gen -device t4 -per-task 1000 -networks wide_resnet50,vit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"pruner"
)

func main() {
	var (
		devName = flag.String("device", "t4", "device: a100|titanv|orin|k80|t4")
		perTask = flag.Int("per-task", 500, "schedules per subgraph")
		netsCSV = flag.String("networks", "wide_resnet50,inception_v3,vit,gpt2", "comma-separated workloads")
		seed    = flag.Int64("seed", 7, "random seed")
	)
	flag.Parse()

	dev, err := pruner.DeviceByName(*devName)
	fatalIf(err)
	names := strings.Split(*netsCSV, ",")
	ds, err := pruner.GenerateDataset(context.Background(), dev, names, *perTask, *seed)
	fatalIf(err)

	fmt.Printf("device=%s tasks=%d entries=%d\n", dev.Name, len(ds.Sets), ds.Size())
	for _, s := range ds.Sets {
		fmt.Printf("  %-60s n=%-5d best=%.4gms\n", s.Task.Name, len(s.Entries), s.Best*1e3)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dataset-gen:", err)
		os.Exit(1)
	}
}
