// Quickstart: tune a single network with the Draft-then-Verify mechanism
// and print the tuning curve.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pruner"
)

func main() {
	// Load a workload from the model zoo. Networks are partitioned into
	// fused subgraphs ("tasks"), each with a weight counting how often it
	// recurs.
	net, err := pruner.LoadNetwork("bert_tiny")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d unique subgraphs, %d instances\n",
		net.Name, len(net.Tasks), net.TotalWeight())

	// Tune on the simulated A100 with the paper's Pruner mechanism: the
	// Latent Schedule Explorer drafts candidates with the Symbol-based
	// Analyzer, the Pattern-aware Cost Model verifies them, and only the
	// winners are measured.
	res, err := pruner.Tune(pruner.A100, net, pruner.Config{
		Method: pruner.MethodPruner,
		Trials: 200,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntuning curve (simulated search time -> end-to-end latency):")
	for i, p := range res.Curve {
		if i%4 != 0 || p.WorkloadLat > 1e17 {
			continue
		}
		fmt.Printf("  %6.0f s  %8.4f ms\n", p.SimSeconds, p.WorkloadLat*1e3)
	}
	fmt.Printf("\nfinal latency: %.4f ms\n", res.FinalLatency*1e3)
	fmt.Printf("compile time:  %.1f simulated minutes (exploration %.1f / training %.1f / measurement %.1f)\n",
		res.Clock.Total()/60, res.Clock.Exploration/60, res.Clock.Training/60, res.Clock.Measurement/60)

	// Per-task results.
	fmt.Println("\nbest schedule per subgraph:")
	for _, t := range net.Tasks {
		if best, ok := res.Best[t.ID]; ok && best.Sched != nil {
			fmt.Printf("  %-55s %9.2f us  x%d\n", t.Name, best.Latency*1e6, t.Weight)
		}
	}
}
