// Cost-model laboratory: train the three learned cost models on a
// TenSet-style dataset and compare their Top-1 / Top-5 ranking accuracy
// on held-out networks — a miniature of the paper's Table 11 and
// Figure 15.
//
// Run with:
//
//	go run ./examples/costmodel-lab
package main

import (
	"context"
	"fmt"
	"log"

	"pruner"
)

func main() {
	// Train split: networks the models learn from. Test split: the
	// paper's held-out set (here two of them, for speed).
	train, err := pruner.GenerateDataset(context.Background(), pruner.T4,
		[]string{"wide_resnet50", "inception_v3", "gpt2"}, 250, 21)
	if err != nil {
		log.Fatal(err)
	}
	test, err := pruner.GenerateDataset(context.Background(), pruner.T4,
		[]string{"resnet50", "bert_tiny"}, 250, 22)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("train: %d programs over %d tasks; test: %d programs over %d tasks\n",
		train.Size(), len(train.Sets), test.Size(), len(test.Sets))

	fmt.Printf("\n%-10s %8s %8s\n", "model", "top-1", "top-5")
	for _, kind := range []string{"tensetmlp", "tlp", "pacm"} {
		model, _, err := pruner.PretrainModel(kind, train, 10, 5)
		if err != nil {
			log.Fatal(err)
		}
		t1 := pruner.EvaluateTopK(model, test, 1)
		t5 := pruner.EvaluateTopK(model, test, 5)
		fmt.Printf("%-10s %8.3f %8.3f\n", kind, t1, t5)
	}
	fmt.Println("\nTop-k (Eq. 2): ratio of the optimal latency to the best latency")
	fmt.Println("among each task's k highest-scored programs, weighted by how often")
	fmt.Println("the subgraph appears in the test networks.")
}
