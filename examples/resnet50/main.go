// ResNet-50 end-to-end tuning shoot-out: Ansor's explore-everything
// baseline vs Pruner's Draft-then-Verify, plus the off-the-shelf
// frameworks — a miniature of the paper's Figures 6 and 9.
//
// Run with:
//
//	go run ./examples/resnet50
package main

import (
	"fmt"
	"log"

	"pruner"
)

func main() {
	net, err := pruner.LoadNetwork("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	dev := pruner.A100

	// Off-the-shelf framework latencies (vendor-library models).
	fmt.Println("framework baselines (A100):")
	for _, fw := range []string{"pytorch", "triton", "tensorrt"} {
		lat, err := pruner.FrameworkLatency(fw, dev, net)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %8.3f ms\n", fw, lat*1e3)
	}

	// Search-based tuning: same budget, two exploration mechanisms. For a
	// fast demo only the 6 heaviest subgraphs are tuned.
	cfg := pruner.Config{Trials: 240, Seed: 3, MaxTasks: 6}

	fmt.Println("\ntuning the 6 dominant subgraphs, 240 trials each method:")
	for _, method := range []pruner.Method{pruner.MethodAnsor, pruner.MethodPruner} {
		cfg.Method = method
		res, err := pruner.Tune(dev, net, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s best %.4f ms, compile %.1f sim-min (exploration %.1f min)\n",
			method, res.FinalLatency*1e3, res.Clock.Total()/60, res.Clock.Exploration/60)
	}

	fmt.Println("\nPruner reaches comparable latency while spending a fraction of")
	fmt.Println("Ansor's exploration time: the draft model prunes the candidate set")
	fmt.Println("before the learned cost model ever runs, so at equal search time")
	fmt.Println("Pruner completes more tuning rounds (the Figure 6 effect).")
}
