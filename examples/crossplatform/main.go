// Cross-platform adaptation with MoA: pretrain PaCM on a K80 dataset,
// then tune on A100 three ways — from scratch, with plain online
// fine-tuning of the pretrained weights, and with the paper's Momentum
// online Adaptation — a miniature of the Table 12 adaptation rows.
//
// Run with:
//
//	go run ./examples/crossplatform
//
// The pretrained weights are cached in .cache/ (pruner.SaveModel format,
// interchangeable with pruner-tune -model-out), so only the first run
// pays for dataset generation and offline training.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pruner"
)

// pretrainPaCM returns the K80-pretrained PaCM weights, loading them from
// the on-disk cache when a previous process already paid for them.
func pretrainPaCM() (*pruner.Pretrained, error) {
	path := filepath.Join(".cache", "crossplatform-pacm.gob")
	if f, err := os.Open(path); err == nil {
		pretrained, err := pruner.LoadModel(f)
		f.Close()
		if err == nil {
			fmt.Printf("loaded cached pretrained weights from %s\n", path)
			return pretrained, nil
		}
		fmt.Printf("ignoring unreadable cache %s: %v\n", path, err)
	}

	// Step 1: offline dataset on the source platform (TenSet's K80).
	fmt.Println("generating K80 pretraining dataset...")
	ds, err := pruner.GenerateDataset(context.Background(), pruner.K80,
		[]string{"wide_resnet50", "vit", "gpt2", "inception_v3"}, 350, 7)
	if err != nil {
		return nil, err
	}
	fmt.Printf("  %d tasks, %d measured programs\n", len(ds.Sets), ds.Size())

	// Step 2: pretrain the Pattern-aware Cost Model on it.
	fmt.Println("pretraining PaCM on K80 data...")
	_, pretrained, err := pruner.PretrainModel("pacm", ds, 14, 7)
	if err != nil {
		return nil, err
	}
	if err := cacheModel(path, pretrained); err != nil {
		fmt.Printf("not caching weights: %v\n", err)
	} else {
		fmt.Printf("cached pretrained weights to %s\n", path)
	}
	return pretrained, nil
}

// cacheModel writes the bundle, closing the file on every path and
// removing a partial file on failure so the next run does not trip over
// a truncated cache.
func cacheModel(path string, p *pruner.Pretrained) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = pruner.SaveModel(f, p)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
	}
	return err
}

func main() {
	pretrained, err := pretrainPaCM()
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: tune BERT-Tiny on the A100 — a different platform with a
	// correlated but distinct performance surface (cross-platform online
	// unawareness).
	net, err := pruner.LoadNetwork("bert_tiny")
	if err != nil {
		log.Fatal(err)
	}
	base := pruner.Config{Trials: 200, Seed: 11, MaxTasks: 5}

	type variant struct {
		label string
		cfg   pruner.Config
	}
	variants := []variant{
		{"from scratch (Pruner)", with(base, pruner.MethodPruner, nil)},
		{"MoA (MoA-Pruner)", with(base, pruner.MethodMoAPruner, pretrained)},
	}
	for _, v := range variants {
		res, err := pruner.Tune(pruner.A100, net, v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s final %.4f ms, compile %.1f sim-min\n",
			v.label, res.FinalLatency*1e3, res.Clock.Total()/60)
	}
	fmt.Println("\nMoA initialises the target model from the Siamese (pretrained)")
	fmt.Println("weights every update and feeds improvements back with momentum")
	fmt.Println("m=0.99, so early biased online data cannot derail training.")
}

func with(c pruner.Config, m pruner.Method, p *pruner.Pretrained) pruner.Config {
	c.Method = m
	c.Pretrained = p
	return c
}
