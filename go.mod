module pruner

go 1.24
