package pruner

import (
	"fmt"

	"pruner/internal/vendorlib"
	"pruner/internal/workloads"
)

// frameworkByName maps user-facing names to vendorlib frameworks.
func frameworkByName(name string) (vendorlib.Framework, error) {
	switch name {
	case "pytorch":
		return vendorlib.PyTorch, nil
	case "triton":
		return vendorlib.Triton, nil
	case "tensorrt":
		return vendorlib.TensorRT, nil
	case "cudalib":
		return vendorlib.CudaLib, nil
	default:
		return 0, fmt.Errorf("pruner: unknown framework %q", name)
	}
}

func vendorNetworkLatency(fw vendorlib.Framework, dev *Device, net *workloads.Network) float64 {
	return vendorlib.NetworkLatency(fw, dev, net)
}
