package pruner

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"

	"pruner/internal/costmodel"
	"pruner/internal/dataset"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/measure"
	"pruner/internal/nn"
	"pruner/internal/obs"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
	"pruner/internal/search"
	"pruner/internal/simulator"
	"pruner/internal/tuner"
	"pruner/internal/workloads"
)

// Re-exported core types. External importers cannot reach the internal
// packages directly; these aliases are the supported surface.
type (
	// Device is a GPU platform model.
	Device = device.Device
	// Task is one fused-subgraph tuning unit.
	Task = ir.Task
	// Network is a partitioned DNN workload.
	Network = workloads.Network
	// Schedule is a point in the tiling search space.
	Schedule = schedule.Schedule
	// Result is a tuning-session outcome (curve, per-task bests, clock).
	Result = tuner.Result
	// CurvePoint samples the tuning curve.
	CurvePoint = tuner.CurvePoint
	// Record is one measured tensor program.
	Record = costmodel.Record
	// Dataset is a TenSet-style measured schedule collection.
	Dataset = dataset.Dataset
	// Model is a cost model (learned or analytical).
	Model = costmodel.Model
	// ProgressEvent is one round of live session progress (Config.Progress).
	ProgressEvent = tuner.ProgressEvent
	// AdaptBounds bounds the adaptive budget controller (Config.Adapt).
	AdaptBounds = tuner.AdaptConfig
	// Pool is a shared worker budget; sessions handed the same Pool never
	// exceed its concurrency in total (the tuning daemon relies on this).
	Pool = parallel.Pool
	// Measurer is a pluggable measurement backend (Config.Measurer): the
	// in-process simulator adapter, a remote worker fleet, or a custom
	// implementation. See internal/measure for the contract.
	Measurer = measure.Measurer
	// Fleet fans measurement batches out over remote pruner-measure
	// workers via HTTP (build one with NewFleet).
	Fleet = measure.Fleet
	// MeasureWorker executes measurement batches for remote sessions; its
	// Handler is the HTTP surface cmd/pruner-measure serves.
	MeasureWorker = measure.Worker
	// Observer bundles the observability spine (metrics registry + trace
	// sink + the clock that times spans). Hand one to Config.Obs,
	// NewObservedFleet or NewObservedMeasureWorker; a nil Observer
	// disarms every instrument at zero cost. See internal/obs.
	Observer = obs.Observer
)

// NewObserver builds a wall-clock Observer for daemons and CLIs: the
// single place real time enters the stack. Deterministic layers only see
// the clock through injection, and clock readings flow into metrics and
// spans only — never into tuning results, so armed sessions stay bitwise
// identical to unarmed ones. traceCap bounds the span ring buffer
// (<= 0 selects the default).
func NewObserver(traceCap int) *Observer { return obs.New(obs.RealClock(), traceCap) }

// Fleet and worker metric names, re-exported so the serving daemon can
// read per-worker dispatch accounting back out of the registry it handed
// NewObservedFleet (the server talks to the measurement subsystem
// through this facade).
const (
	MetricFleetBatches   = measure.MetricFleetBatches
	MetricFleetSchedules = measure.MetricFleetSchedules
	MetricFleetFailures  = measure.MetricFleetFailures
)

// Engine metric names registered by RegisterEngineMetrics.
const (
	MetricNNGEMMCalls    = "pruner_nn_gemm_calls_total"
	MetricNNGEMMRows     = "pruner_nn_gemm_rows_total"
	MetricNNAttnSegments = "pruner_nn_attention_segments_total"
)

// WriteTrace dumps o's span ring buffer as indented JSON to w — the same
// payload the daemon serves at GET /v1/trace (pruner-tune's -trace-out).
// Nil-safe: an unarmed observer dumps an empty trace.
func WriteTrace(o *Observer, w io.Writer) error { return o.Sink().WriteJSON(w) }

// RegisterEngineMetrics exposes the nn inference engine's process-wide
// kernel counters on o's registry as func-backed metrics, sampled at
// scrape time. The counters are plain atomics inside internal/nn (the
// engine carries no observability dependency); a nil Observer is a no-op.
func RegisterEngineMetrics(o *Observer) {
	reg := o.Reg()
	reg.CounterFunc(MetricNNGEMMCalls,
		"Fused GEMM kernel invocations by the nn inference engine.",
		func() float64 { return float64(nn.Counters().GEMMCalls) })
	reg.CounterFunc(MetricNNGEMMRows,
		"Rows pushed through fused GEMM kernels.",
		func() float64 { return float64(nn.Counters().GEMMRows) })
	reg.CounterFunc(MetricNNAttnSegments,
		"Attention segments processed by the TLP transformer path.",
		func() float64 { return float64(nn.Counters().AttnSegments) })
}

// NewPool builds a worker pool with the given budget; workers <= 0 selects
// runtime.NumCPU(). Pass it via Config.Pool to cap total concurrency
// across concurrent sessions.
func NewPool(workers int) *Pool { return parallel.New(workers) }

// NewFleet builds a measurement fleet over pruner-measure worker base
// URLs, with default wire settings; pass it via Config.Measurer. Results
// are bitwise identical to in-process simulated measurement for the same
// seed (the session draws measurement noise itself at commit time).
func NewFleet(urls []string) *Fleet { return measure.NewFleet(urls, measure.FleetOptions{}) }

// NewObservedFleet is NewFleet with live per-worker dispatch counters and
// batch-latency histograms landing on o's registry (pruner_fleet_*). Hand
// successive fleets a daemon's long-lived Observer and per-worker totals
// accumulate across jobs, scrapeable mid-session. nil o builds an
// unobserved fleet.
func NewObservedFleet(urls []string, o *Observer) *Fleet {
	return measure.NewFleet(urls, measure.FleetOptions{Metrics: o.Reg()})
}

// NewMeasureWorker builds a measurement worker executing batches on a
// pool-bounded fan-out (workers <= 0 selects runtime.NumCPU()).
func NewMeasureWorker(workers int) *MeasureWorker {
	return measure.NewWorker(measure.WorkerOptions{Pool: parallel.New(workers)})
}

// NewObservedMeasureWorker is NewMeasureWorker with the worker's counters
// exposed on o's registry (pruner_worker_*) and GET /metrics mounted on
// its Handler. nil o builds an unobserved worker.
func NewObservedMeasureWorker(workers int, o *Observer) *MeasureWorker {
	return measure.NewWorker(measure.WorkerOptions{Pool: parallel.New(workers), Metrics: o.Reg()})
}

// Preset devices of the paper's evaluation.
var (
	A100   = device.A100
	TitanV = device.TitanV
	Orin   = device.Orin
	K80    = device.K80
	T4     = device.T4
)

// DeviceByName resolves a preset device ("a100", "titanv", "orin", "k80",
// "t4").
func DeviceByName(name string) (*Device, error) { return device.ByName(name) }

// LoadNetwork builds a workload from the model zoo (see NetworkNames).
func LoadNetwork(name string) (*Network, error) { return workloads.ByName(name) }

// NetworkNames lists the available workloads.
func NetworkNames() []string { return workloads.Names() }

// Method selects a tuning approach.
type Method string

// Supported tuning methods.
const (
	// MethodPruner is the paper's Draft-then-Verify mechanism with PaCM
	// trained online.
	MethodPruner Method = "pruner"
	// MethodMoAPruner adds Momentum online Adaptation from pretrained
	// cross-platform weights (requires Config.Pretrained).
	MethodMoAPruner Method = "moa-pruner"
	// MethodAnsor is evolutionary search with an online statement-feature
	// MLP over all explored candidates.
	MethodAnsor Method = "ansor"
	// MethodTenSetMLP is Ansor-style search guided by an offline
	// pretrained MLP (requires Config.Pretrained).
	MethodTenSetMLP Method = "tensetmlp"
	// MethodTLP is Ansor-style search guided by the offline TLP
	// transformer (requires Config.Pretrained).
	MethodTLP Method = "tlp"
	// MethodPrunerOffline drafts with LSE and verifies with an offline
	// pretrained PaCM (requires Config.Pretrained).
	MethodPrunerOffline Method = "pruner-offline"
	// MethodMetaSchedule is the TensorCore-capable evolutionary baseline.
	MethodMetaSchedule Method = "metaschedule"
	// MethodRoller is the rule-based aligned-tile baseline.
	MethodRoller Method = "roller"
)

// Pretrained carries cost-model weights from offline pretraining, keyed to
// the model architecture that produced them.
type Pretrained struct {
	Kind    string // "pacm", "tensetmlp", "tlp"
	Weights []*nn.Tensor
}

// PretrainedKind is the canonical method -> weight-architecture map: the
// model kind a method's Config.Pretrained must carry, or "" for methods
// that need no pretrained weights. Tune and the daemon's submit-time
// gating both consult it, so the mapping cannot drift between them.
func PretrainedKind(m Method) string {
	switch m {
	case MethodMoAPruner, MethodPrunerOffline:
		return "pacm"
	case MethodTenSetMLP:
		return "tensetmlp"
	case MethodTLP:
		return "tlp"
	case MethodPruner, MethodAnsor, MethodMetaSchedule, MethodRoller:
		return ""
	}
	return ""
}

// SaveModel writes a pretrained weight bundle (kind + parameters) to w,
// in the format LoadModel reads. Together with the -model-out/-model-in
// CLI flags this lets one process pretrain and every later process —
// tuner runs, the serving daemon, examples — reuse the weights instead
// of re-pretraining.
func SaveModel(w io.Writer, p *Pretrained) error {
	if p == nil || len(p.Weights) == 0 {
		return fmt.Errorf("pruner: SaveModel needs a non-empty Pretrained")
	}
	if _, err := newModelKind(p.Kind, 0); err != nil {
		return err
	}
	// One encoder for the whole bundle: a gob decoder reads ahead of what
	// it decodes, so the kind header and the parameter blob must share a
	// stream rather than stack independent encoders.
	enc := gob.NewEncoder(w)
	if err := enc.Encode(p.Kind); err != nil {
		return fmt.Errorf("pruner: writing model kind: %w", err)
	}
	return nn.EncodeParams(enc, p.Weights)
}

// LoadModel reads a weight bundle written by SaveModel, validating the
// parameters against a freshly built model of the recorded kind.
func LoadModel(r io.Reader) (*Pretrained, error) {
	dec := gob.NewDecoder(r)
	var kind string
	if err := dec.Decode(&kind); err != nil {
		return nil, fmt.Errorf("pruner: reading model kind: %w", err)
	}
	m, err := newModelKind(kind, 0)
	if err != nil {
		return nil, err
	}
	if err := nn.DecodeParams(dec, m.Params()); err != nil {
		return nil, fmt.Errorf("pruner: loading %q weights: %w", kind, err)
	}
	return &Pretrained{Kind: kind, Weights: tuner.SnapshotParams(m)}, nil
}

// newModelKind builds a fresh learned cost model of the named kind.
func newModelKind(kind string, seed int64) (costmodel.Model, error) {
	switch kind {
	case "pacm":
		return costmodel.NewPaCM(seed), nil
	case "tensetmlp":
		return costmodel.NewTenSetMLP(seed), nil
	case "tlp":
		return costmodel.NewTLP(seed), nil
	default:
		return nil, fmt.Errorf("pruner: unknown model kind %q", kind)
	}
}

// Config tunes a session.
type Config struct {
	Method Method
	// Trials is the measurement budget (default 2,000).
	Trials int
	// BatchSize is measurements per round (default 10).
	BatchSize int
	// Seed fixes all randomness.
	Seed int64
	// Pretrained supplies offline weights for the methods that need them.
	Pretrained *Pretrained
	// TensorCore enables wmma schedules on FP16 workloads.
	TensorCore bool
	// MaxTasks optionally tunes only the top-N subgraphs by FLOPs share
	// (scaled experiments); 0 tunes all.
	MaxTasks int
	// Parallelism is the session's worker count for candidate drafting,
	// cost-model inference and simulated measurement; <= 0 (the default)
	// selects runtime.NumCPU(), 1 runs serially. The same Seed produces a
	// bitwise-identical Result at any setting.
	Parallelism int
	// Pool optionally shares a caller-owned worker budget with other
	// concurrent sessions, overriding Parallelism; the tuning daemon
	// hands every job the same Pool so N jobs never exceed one budget.
	Pool *Pool
	// Measurer selects the measurement backend; nil runs the in-process
	// simulator adapter. A NewFleet measurer distributes batches over
	// remote pruner-measure workers with bitwise-identical results.
	Measurer Measurer
	// PipelineDepth bounds in-flight measurement rounds. 1 (default) is
	// the serial loop; higher depths overlap measurement with the next
	// round's search and the online fit, still bitwise reproducible for a
	// fixed depth at any Parallelism. Ignored when AdaptBudget is set
	// (the controller then owns the depth).
	PipelineDepth int
	// AdaptBudget enables calibration-driven budget control: the session
	// tracks the cost model's predicted-vs-measured rank error per task
	// and deterministically shrinks the verify/measure batch, widens
	// the LSE draft set and deepens the pipeline where the model has
	// earned trust — measuring fewer candidates for the same Trials
	// budget on well-modeled tasks. Off (the default), sessions are
	// bitwise identical to fixed-budget tuning. See DESIGN.md §14.
	AdaptBudget bool
	// Adapt bounds the adaptive controller (zero fields use defaults);
	// only read when AdaptBudget is set.
	Adapt AdaptBounds
	// Ctx cancels the session between measurement rounds; the partial
	// Result (Interrupted set) is still valid. nil never cancels.
	Ctx context.Context
	// Progress, when non-nil, receives one event per measurement round,
	// serially and in order (the daemon's SSE feed).
	Progress func(ProgressEvent)
	// WarmStart seeds the session with prior records (a -resume log or
	// store history): they enter each task's measured set and best, and
	// prime the first cost-model fit, without charging trials or
	// measurement time (the priming fit charges training time like any
	// online update). Identical warm-start slices with the same Seed
	// keep the session bitwise reproducible at any Parallelism.
	WarmStart []Record
	// Obs, when non-nil, arms the session with metrics and span tracing
	// (per-stage latencies, cost-model fit/predict spans). Clock readings
	// flow into the observer only, never into tuning decisions: the same
	// Seed produces a bitwise-identical Result armed or not.
	Obs *Observer
}

// Tune runs a full tuning session of the network on the device.
func Tune(dev *Device, net *Network, cfg Config) (*Result, error) {
	tasks := net.Representative(cfg.MaxTasks)
	opt := tuner.Options{
		Trials:        cfg.Trials,
		BatchSize:     cfg.BatchSize,
		Seed:          cfg.Seed,
		TensorCore:    cfg.TensorCore,
		Parallelism:   cfg.Parallelism,
		Pool:          cfg.Pool,
		Measurer:      cfg.Measurer,
		PipelineDepth: cfg.PipelineDepth,
		AdaptBudget:   cfg.AdaptBudget,
		Adapt:         cfg.Adapt,
		Ctx:           cfg.Ctx,
		Progress:      cfg.Progress,
		WarmStart:     cfg.WarmStart,
		Obs:           cfg.Obs,
	}
	needPretrained := func() ([]*nn.Tensor, error) {
		kind := PretrainedKind(cfg.Method)
		if cfg.Pretrained == nil {
			return nil, fmt.Errorf("pruner: method %q requires Config.Pretrained", cfg.Method)
		}
		if cfg.Pretrained.Kind != kind {
			return nil, fmt.Errorf("pruner: method %q needs %q weights, got %q", cfg.Method, kind, cfg.Pretrained.Kind)
		}
		return cfg.Pretrained.Weights, nil
	}
	switch cfg.Method {
	case MethodPruner, "":
		opt.Policy = search.NewPrunerPolicy()
		opt.Model = costmodel.NewPaCM(cfg.Seed + 1)
		opt.OnlineTrain = true
	case MethodMoAPruner:
		w, err := needPretrained()
		if err != nil {
			return nil, err
		}
		opt.Policy = search.NewPrunerPolicy()
		opt.Model = costmodel.NewPaCM(cfg.Seed + 1)
		opt.OnlineTrain = true
		opt.Adaptation = tuner.AdaptMoA
		opt.Pretrained = w
	case MethodAnsor:
		opt.Policy = search.NewAnsorPolicy()
		opt.Model = costmodel.NewTenSetMLP(cfg.Seed + 1)
		opt.OnlineTrain = true
	case MethodTenSetMLP:
		w, err := needPretrained()
		if err != nil {
			return nil, err
		}
		opt.Policy = search.NewAnsorPolicy()
		opt.Model = costmodel.NewTenSetMLP(cfg.Seed + 1)
		opt.Adaptation = tuner.AdaptFineTune
		opt.Pretrained = w
	case MethodTLP:
		w, err := needPretrained()
		if err != nil {
			return nil, err
		}
		opt.Policy = search.NewAnsorPolicy()
		opt.Model = costmodel.NewTLP(cfg.Seed + 1)
		opt.Adaptation = tuner.AdaptFineTune
		opt.Pretrained = w
	case MethodPrunerOffline:
		w, err := needPretrained()
		if err != nil {
			return nil, err
		}
		opt.Policy = search.NewPrunerPolicy()
		opt.Model = costmodel.NewPaCM(cfg.Seed + 1)
		opt.Adaptation = tuner.AdaptFineTune
		opt.Pretrained = w
	case MethodMetaSchedule:
		opt.Policy = search.NewMetaSchedulePolicy()
		opt.Model = costmodel.NewTenSetMLP(cfg.Seed + 1)
		opt.OnlineTrain = true
	case MethodRoller:
		opt.Policy = search.NewRollerPolicy()
		opt.Model = costmodel.NewRandom(cfg.Seed + 1)
		if cfg.Trials == 0 {
			opt.Trials = 50 * len(tasks)
		}
	default:
		return nil, fmt.Errorf("pruner: unknown method %q", cfg.Method)
	}
	return tuner.Tune(dev, tasks, opt), nil
}

// GenerateDataset builds a TenSet-style dataset for the named networks on
// a device.
func GenerateDataset(ctx context.Context, dev *Device, networks []string, schedulesPerTask int, seed int64) (*Dataset, error) {
	tasks, err := dataset.NetworksTasks(networks)
	if err != nil {
		return nil, err
	}
	return dataset.Generate(ctx, dev, tasks, dataset.GenOptions{
		SchedulesPerTask: schedulesPerTask,
		Seed:             seed,
	}), nil
}

// PretrainModel trains a fresh cost model of the given kind ("pacm",
// "tensetmlp", "tlp") on a dataset and returns both the live model and a
// weight snapshot usable as Config.Pretrained.
func PretrainModel(kind string, ds *Dataset, epochs int, seed int64) (Model, *Pretrained, error) {
	m, err := newModelKind(kind, seed)
	if err != nil {
		return nil, nil, err
	}
	// The cache is scoped to this one (multi-epoch) fit: each record is
	// lowered and featurized once instead of once per epoch.
	m.Fit(ds.Records(), costmodel.FitOptions{Epochs: epochs, Seed: seed, Cache: costmodel.NewFitCache()})
	return m, &Pretrained{Kind: kind, Weights: tuner.SnapshotParams(m)}, nil
}

// EvaluateTopK computes the paper's Top-k metric (Eq. 2) of a cost model
// over a dataset: the ratio of the weighted-optimal latency to the
// weighted best latency found within each task's k highest-scored
// programs.
func EvaluateTopK(m Model, ds *Dataset, k int) float64 {
	return ds.TopK(k, func(s *dataset.TaskSet) []float64 {
		schs := make([]*schedule.Schedule, len(s.Entries))
		for i := range s.Entries {
			schs[i] = s.Entries[i].Sched
		}
		return m.Predict(s.Task, schs)
	})
}

// FrameworkLatency estimates a network's inference latency under an
// off-the-shelf framework ("pytorch", "triton", "tensorrt", "cudalib").
func FrameworkLatency(framework string, dev *Device, net *Network) (float64, error) {
	fw, err := frameworkByName(framework)
	if err != nil {
		return 0, err
	}
	return vendorNetworkLatency(fw, dev, net), nil
}

// SimulatedClock summarises where a session's compilation time went.
type SimulatedClock = simulator.Clock
